// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benches for the design choices called
// out in DESIGN.md. Metrics beyond ns/op are attached with b.ReportMetric
// (imbalance ratios, overhead per MB, iteration counts), so the bench
// output doubles as the experiment record.
package gridse_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/contingency"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/medici"
	"repro/internal/partition"
	"repro/internal/powerflow"
	"repro/internal/sparse"
	"repro/internal/wls"
)

var (
	fixtureOnce sync.Once
	fixture118  *experiments.Fixture
	fixtureErr  error
)

func benchFixture(b *testing.B) *experiments.Fixture {
	b.Helper()
	fixtureOnce.Do(func() {
		fixture118, fixtureErr = experiments.NewFixture(9, 1.0, 1)
	})
	if fixtureErr != nil {
		b.Fatalf("fixture: %v", fixtureErr)
	}
	return fixture118
}

// BenchmarkTable1Decomposition regenerates Table I: decomposing IEEE-118
// into 9 subsystems and building the weighted decomposition graph.
func BenchmarkTable1Decomposition(b *testing.B) {
	n := grid.Case118()
	for i := 0; i < b.N; i++ {
		dec, err := core.Decompose(n, 9, core.DecomposeOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		t := experiments.RunTable1(&experiments.Fixture{Net: n, Dec: dec})
		if len(t.VertexWeights) != 9 {
			b.Fatal("wrong table shape")
		}
	}
}

// BenchmarkTable2Mapping regenerates Table II: naive vs cost-model mapping
// bus counts per cluster. Reports both imbalances.
func BenchmarkTable2Mapping(b *testing.B) {
	fx := benchFixture(b)
	var t experiments.Table2
	var err error
	for i := 0; i < b.N; i++ {
		t, err = experiments.RunTable2(fx, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(imbalanceOf(t.WithoutMapping), "imbalance-naive")
	b.ReportMetric(imbalanceOf(t.WithMapping), "imbalance-mapped")
}

func imbalanceOf(buses []int) float64 {
	total, maxB := 0, 0
	for _, x := range buses {
		total += x
		if x > maxB {
			maxB = x
		}
	}
	return float64(maxB) / (float64(total) / float64(len(buses)))
}

// BenchmarkTable3MediciLocal regenerates Table III: direct-TCP vs
// through-middleware transfer on loopback. Sub-benchmarks per payload size;
// the per-size overhead is reported as ms.
func BenchmarkTable3MediciLocal(b *testing.B) {
	for _, sz := range []int{1 << 20, 4 << 20, 16 << 20} {
		b.Run(sizeName(sz), func(b *testing.B) {
			var last medici.OverheadSample
			for i := 0; i < b.N; i++ {
				s, err := medici.MeasureOverhead(context.Background(), nil, sz, 0)
				if err != nil {
					b.Fatal(err)
				}
				last = s
			}
			b.SetBytes(int64(sz))
			b.ReportMetric(last.Overhead.Seconds()*1e3, "overhead-ms")
		})
	}
}

// BenchmarkTable4MediciRemote regenerates Table IV on the shaped
// lab-network profile.
func BenchmarkTable4MediciRemote(b *testing.B) {
	tr := cluster.NewShapedTransport(cluster.LabNetworkProfile(), nil)
	for _, sz := range []int{1 << 20, 4 << 20} {
		b.Run(sizeName(sz), func(b *testing.B) {
			var last medici.OverheadSample
			for i := 0; i < b.N; i++ {
				s, err := medici.MeasureOverhead(context.Background(), tr, sz, 0)
				if err != nil {
					b.Fatal(err)
				}
				last = s
			}
			b.SetBytes(int64(sz))
			b.ReportMetric(last.Overhead.Seconds()*1e3, "overhead-ms")
		})
	}
}

func sizeName(sz int) string {
	switch {
	case sz >= 1<<20:
		return itoa(sz>>20) + "MiB"
	default:
		return itoa(sz) + "B"
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig4PartitionStep1 regenerates Figure 4 and reports the
// load-imbalance ratio (paper: 1.035).
func BenchmarkFig4PartitionStep1(b *testing.B) {
	fx := benchFixture(b)
	var f experiments.MappingFigure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.RunFig4(fx, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.Imbalance, "imbalance")
}

// BenchmarkFig5RepartitionStep2 regenerates Figure 5 and reports the
// post-repartition imbalance (paper: 1.079) and migration count (paper: 2).
func BenchmarkFig5RepartitionStep2(b *testing.B) {
	fx := benchFixture(b)
	var f experiments.MappingFigure
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.RunFig5(fx, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f.Imbalance, "imbalance")
	b.ReportMetric(float64(len(f.Migrated)), "migrations")
}

// BenchmarkFig8OverheadLinearity regenerates Figure 8's series and reports
// the overhead-per-MB slope at two sizes — a linear trend gives similar
// values (the paper's key observation).
func BenchmarkFig8OverheadLinearity(b *testing.B) {
	var small, large medici.OverheadSample
	for i := 0; i < b.N; i++ {
		var err error
		small, err = medici.MeasureOverhead(context.Background(), nil, 2<<20, 0)
		if err != nil {
			b.Fatal(err)
		}
		large, err = medici.MeasureOverhead(context.Background(), nil, 16<<20, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(small.Overhead.Seconds()*1e3/2, "ms-per-MiB-small")
	b.ReportMetric(large.Overhead.Seconds()*1e3/16, "ms-per-MiB-large")
}

// BenchmarkExpr2IterationModel regenerates the Expression (2) calibration
// and reports the fitted g1/g2 (paper: 3.7579 / 5.2464 on their testbed).
func BenchmarkExpr2IterationModel(b *testing.B) {
	var fit experiments.Expr2Fit
	var err error
	for i := 0; i < b.N; i++ {
		fit, err = experiments.RunExpr2([]float64{1, 2, 3, 4}, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.G1, "g1")
	b.ReportMetric(fit.G2, "g2")
}

// BenchmarkEndToEndDSE regenerates the headline comparison: the full
// distributed architecture run (map -> step1 -> remap -> exchange ->
// step2 -> aggregate) on the 3-cluster testbed.
func BenchmarkEndToEndDSE(b *testing.B) {
	fx := benchFixture(b)
	var e experiments.EndToEnd
	var err error
	for i := 0; i < b.N; i++ {
		e, err = experiments.RunEndToEnd(context.Background(), fx, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(e.CentralizedTime.Seconds()*1e3, "centralized-ms")
	b.ReportMetric(e.DistributedTime.Seconds()*1e3, "distributed-ms")
	b.ReportMetric(float64(e.WireBytes), "wire-bytes")
}

// BenchmarkCentralizedWLS118 is the baseline the paper compares against:
// one full-system WLS solve on IEEE-118, crossed with the gain-matrix
// storage format. The formats are forced explicitly because FormatAuto
// keeps the 118-bus gain (nnz below the parallel threshold) on scalar
// CSR; the csr row is therefore the historical default.
func BenchmarkCentralizedWLS118(b *testing.B) {
	fx := benchFixture(b)
	for _, f := range []struct {
		name string
		opts wls.Options
	}{
		{"csr", wls.Options{Format: wls.FormatCSR}},
		{"bsr", wls.Options{Format: wls.FormatBSR}},
		{"bjacobi", wls.Options{Precond: wls.PrecondBlockJacobi}},
	} {
		b.Run(f.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CentralizedEstimate(context.Background(), fx.Net, fx.Meas, f.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGainKernels118 isolates the two hot gain-matrix kernels of the
// PCG solve — numeric refresh G = HᵀWH and mat-vec y = G·x — on the
// IEEE-118 gain in scalar CSR versus 2×2 bus-blocked BSR, both through
// the same bus-interleaved ordering so only the storage layout differs.
// This is the kernel-level speedup the blocked format exists for.
func BenchmarkGainKernels118(b *testing.B) {
	fx := benchFixture(b)
	ref := fx.Net.SlackIndex()
	mod, err := meas.NewModel(fx.Net, fx.Meas, ref, fx.Truth.Va[ref])
	if err != nil {
		b.Fatal(err)
	}
	hj := mod.Jacobian(mod.FlatVec())
	w := mod.Weights()
	perm := sparse.BusInterleave(mod.NAngles(), fx.Net.N(), mod.RefBus(), nil)
	gp := sparse.NewGainPlanOrdered(hj, perm)
	g := gp.Refresh(hj, w)
	bm := gp.RefreshBSR(hj, w)

	b.Run("refresh/csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gp.Refresh(hj, w)
		}
	})
	b.Run("refresh/bsr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gp.RefreshBSR(hj, w)
		}
	})
	x := make([]float64, bm.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)
	}
	y := make([]float64, bm.Rows)
	b.Run("matvec/csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.MulVec(y[:g.Rows], x[:g.Cols])
		}
	})
	b.Run("matvec/bsr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bm.MulVec(y, x)
		}
	})
}

// BenchmarkPowerFlow118 times the ground-truth generator.
func BenchmarkPowerFlow118(b *testing.B) {
	n := grid.Case118()
	for i := 0; i < b.N; i++ {
		if _, err := powerflow.Solve(n, powerflow.Options{FlatStart: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §5) ---

// BenchmarkAblationPreconditioner compares gain-solve preconditioners on
// the full IEEE-118 estimation, crossed with the fill-reducing ordering of
// the gain matrix (natural / RCM / min-degree). Jacobi is permutation-
// invariant, so its orderings should tie — a built-in sanity row.
func BenchmarkAblationPreconditioner(b *testing.B) {
	fx := benchFixture(b)
	// The format axis keeps the historical csr row names unchanged (they
	// anchor cross-run comparisons) and adds blocked variants: jacobi on
	// the BSR gain, and the 2×2 block-Jacobi preconditioner (BSR-only).
	precs := []struct {
		name   string
		kind   wls.PrecondKind
		format wls.FormatKind
	}{
		{"none", wls.PrecondNone, wls.FormatAuto},
		{"jacobi", wls.PrecondJacobi, wls.FormatAuto},
		{"ic0", wls.PrecondIC0, wls.FormatAuto},
		{"ssor", wls.PrecondSSOR, wls.FormatAuto},
		{"jacobi-bsr", wls.PrecondJacobi, wls.FormatBSR},
		{"bjacobi", wls.PrecondBlockJacobi, wls.FormatAuto},
	}
	orders := []struct {
		name string
		kind wls.OrderingKind
	}{
		{"natural", wls.OrderNatural},
		{"rcm", wls.OrderRCM},
		{"mindeg", wls.OrderMinDegree},
	}
	for _, p := range precs {
		for _, o := range orders {
			if p.kind == wls.PrecondNone && o.kind != wls.OrderNatural {
				continue // unpreconditioned CG is ordering-blind
			}
			b.Run(p.name+"/"+o.name, func(b *testing.B) {
				var cg int
				for i := 0; i < b.N; i++ {
					res, err := core.CentralizedEstimate(context.Background(), fx.Net, fx.Meas,
						wls.Options{Precond: p.kind, Ordering: o.kind, Format: p.format})
					if err != nil {
						b.Fatal(err)
					}
					cg = res.CGIterations
				}
				b.ReportMetric(float64(cg), "cg-iters")
			})
		}
	}
}

// BenchmarkAblationSolver compares the three WLS solution paths on the
// full IEEE-118 estimation: PCG normal equations (the paper's solver),
// dense LU normal equations, and Givens QR.
func BenchmarkAblationSolver(b *testing.B) {
	fx := benchFixture(b)
	for _, s := range []struct {
		name string
		kind wls.SolverKind
	}{{"pcg", wls.PCG}, {"dense", wls.Dense}, {"qr", wls.QR}} {
		b.Run(s.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CentralizedEstimate(context.Background(), fx.Net, fx.Meas, wls.Options{Solver: s.kind}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWorkers sweeps the parallel mat-vec width of the PCG
// solver (the paper's parallel SE code dimension).
func BenchmarkAblationWorkers(b *testing.B) {
	fx := benchFixture(b)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run("workers-"+itoa(w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CentralizedEstimate(context.Background(), fx.Net, fx.Meas, wls.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMapping compares the end-to-end distributed run with the
// cost-model mapping vs the naive contiguous assignment (Table II's
// motivation).
func BenchmarkAblationMapping(b *testing.B) {
	fx := benchFixture(b)
	for _, mode := range []struct {
		name      string
		noMapping bool
	}{{"mapped", false}, {"naive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var imb float64
			for i := 0; i < b.N; i++ {
				res, err := core.RunDistributed(context.Background(), fx.Dec, fx.Meas, core.DistributedOptions{
					Clusters: 3, NoMapping: mode.noMapping,
				})
				if err != nil {
					b.Fatal(err)
				}
				imb = res.Step1Mapping.Imbalance
			}
			b.ReportMetric(imb, "imbalance")
		})
	}
}

// BenchmarkAblationSensitivity sweeps the sensitive-internal-bus radius:
// larger radii exchange more state (bytes) for better Step-2 anchoring.
func BenchmarkAblationSensitivity(b *testing.B) {
	n := grid.Case118()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, radius := range []int{1, 2, 3} {
		b.Run("radius-"+itoa(radius), func(b *testing.B) {
			dec, err := core.Decompose(n, 9, core.DecomposeOptions{Seed: 1, SensitivityRadius: radius})
			if err != nil {
				b.Fatal(err)
			}
			plan := meas.FullPlan().Build(n)
			plan = append(plan, core.PMUPlanFor(dec, plan, 0.0005)...)
			ms, err := meas.Simulate(n, plan, pf.State, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			var bytes int
			for i := 0; i < b.N; i++ {
				res, err := core.RunDSE(context.Background(), dec, ms, core.DSEOptions{})
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.ExchangeBytes
			}
			b.ReportMetric(float64(bytes), "exchange-bytes")
		})
	}
}

// BenchmarkAblationSiteScheduling compares sequential vs gang-scheduled
// estimation jobs on one site.
func BenchmarkAblationSiteScheduling(b *testing.B) {
	fx := benchFixture(b)
	var jobs []cluster.EstimationJob
	for si := range fx.Dec.Subsystems {
		sp, err := fx.Dec.BuildStep1(si, fx.Meas)
		if err != nil {
			b.Fatal(err)
		}
		jobs = append(jobs, cluster.EstimationJob{ID: si, Model: sp.Model})
	}
	tb, err := cluster.NewTestbed(1, 4, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer tb.Close()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range tb.Sites[0].RunJobs(context.Background(), jobs) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range tb.Sites[0].RunJobsConcurrent(context.Background(), jobs) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
}

// BenchmarkRoundsStudy regenerates the Step-2 convergence study and
// reports the boundary RMS after 1 round and after diameter rounds.
func BenchmarkRoundsStudy(b *testing.B) {
	fx := benchFixture(b)
	var pts []experiments.RoundsPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.RunRoundsStudy(context.Background(), fx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].BoundaryRMSVa*1e6, "round1-rms-microrad")
	b.ReportMetric(pts[len(pts)-1].BoundaryRMSVa*1e6, "final-rms-microrad")
}

// BenchmarkDSE118Rounds runs the in-process two-step DSE on IEEE-118
// across Step-2 round counts. With the session layer, every round past
// the first is a value-only refresh of the Step-2 skeletons with a
// warm-started solve, so the marginal round cost is the number to watch.
func BenchmarkDSE118Rounds(b *testing.B) {
	fx := benchFixture(b)
	for _, rounds := range []int{1, 2, 4} {
		b.Run("rounds-"+itoa(rounds), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunDSE(context.Background(), fx.Dec, fx.Meas, core.DSEOptions{Rounds: rounds}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrackerFrames measures the steady-state tracked-frame cost:
// the first frame (symbolic build — skeletons, models, solver plans) is
// paid before the timer starts, so every timed iteration is a
// value-refreshed, warm-started full DSE pass on the pinned session under
// the tracker's default numeric-reuse tier (ReuseGain). The reported
// gain-skip-frac is the fraction of gain-solve iterations that ran on the
// previous frame's G and preconditioner.
func BenchmarkTrackerFrames(b *testing.B) {
	fx := benchFixture(b)
	tracker := core.NewTracker(fx.Dec, core.DSEOptions{Rounds: 2})
	if _, err := tracker.Process(fx.Meas); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var skips, total int
	for i := 0; i < b.N; i++ {
		res, err := tracker.Process(fx.Meas)
		if err != nil {
			b.Fatal(err)
		}
		skips += res.Step1Stats.GainSkips + res.Step2Stats.GainSkips
		total += res.Step1Stats.GainSkips + res.Step2Stats.GainSkips +
			res.Step1Stats.GainRefreshes + res.Step2Stats.GainRefreshes
	}
	if total > 0 {
		b.ReportMetric(float64(skips)/float64(total), "gain-skip-frac")
	}
}

// reuseModes is the numeric-reuse benchmark axis.
var reuseModes = []struct {
	name string
	kind wls.GainReuseKind
}{
	{"off", wls.ReuseOff},
	{"precond", wls.ReusePrecond},
	{"gain", wls.ReuseGain},
}

// BenchmarkTrackerFramesReuse crosses the steady-state tracked frame with
// the numeric-reuse tier, isolating what each tier saves on the hot
// tracking path (BenchmarkTrackerFrames keeps its historical name and
// default for cross-record comparison).
func BenchmarkTrackerFramesReuse(b *testing.B) {
	fx := benchFixture(b)
	for _, mode := range reuseModes {
		b.Run(mode.name, func(b *testing.B) {
			tracker := core.NewTracker(fx.Dec, core.DSEOptions{Rounds: 2, WLS: wls.Options{GainReuse: mode.kind}})
			if _, err := tracker.Process(fx.Meas); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var skips, total int
			for i := 0; i < b.N; i++ {
				res, err := tracker.Process(fx.Meas)
				if err != nil {
					b.Fatal(err)
				}
				skips += res.Step1Stats.GainSkips + res.Step2Stats.GainSkips
				total += res.Step1Stats.GainSkips + res.Step2Stats.GainSkips +
					res.Step1Stats.GainRefreshes + res.Step2Stats.GainRefreshes
			}
			if total > 0 {
				b.ReportMetric(float64(skips)/float64(total), "gain-skip-frac")
			}
		})
	}
}

// BenchmarkDSE118RoundsReuse crosses the standalone 4-round DSE run with
// the numeric-reuse tier: rounds past the first re-solve nearly identical
// Step-2 systems, so the drift gate engages within a single run even
// without tracking.
func BenchmarkDSE118RoundsReuse(b *testing.B) {
	fx := benchFixture(b)
	for _, mode := range reuseModes {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var skips, total int
			for i := 0; i < b.N; i++ {
				res, err := core.RunDSE(context.Background(), fx.Dec, fx.Meas,
					core.DSEOptions{Rounds: 4, WLS: wls.Options{GainReuse: mode.kind}})
				if err != nil {
					b.Fatal(err)
				}
				skips += res.Step1Stats.GainSkips + res.Step2Stats.GainSkips
				total += res.Step1Stats.GainSkips + res.Step2Stats.GainSkips +
					res.Step1Stats.GainRefreshes + res.Step2Stats.GainRefreshes
			}
			if total > 0 {
				b.ReportMetric(float64(skips)/float64(total), "gain-skip-frac")
			}
		})
	}
}

// BenchmarkGainReuse118 isolates the refresh-skip saving on one engine:
// the IEEE-118 centralized estimate is re-solved from its own solution —
// the numeric profile of a steady tracked frame — so under ReuseGain every
// timed solve skips the gain scatter and the preconditioner refresh.
func BenchmarkGainReuse118(b *testing.B) {
	fx := benchFixture(b)
	ref := fx.Net.SlackIndex()
	for _, mode := range reuseModes {
		b.Run(mode.name, func(b *testing.B) {
			mod, err := meas.NewModel(fx.Net, fx.Meas, ref, fx.Truth.Va[ref])
			if err != nil {
				b.Fatal(err)
			}
			eng := wls.NewEngine(mod)
			opts := wls.Options{GainReuse: mode.kind}
			cold, err := eng.Estimate(opts)
			if err != nil {
				b.Fatal(err)
			}
			opts.X0 = append([]float64(nil), cold.X...)
			b.ReportAllocs()
			b.ResetTimer()
			var skips, total int
			for i := 0; i < b.N; i++ {
				res, err := eng.Estimate(opts)
				if err != nil {
					b.Fatal(err)
				}
				skips += res.GainSkips
				total += res.GainSkips + res.GainRefreshes
			}
			if total > 0 {
				b.ReportMetric(float64(skips)/float64(total), "gain-skip-frac")
			}
		})
	}
}

// BenchmarkWECCScaleDSE runs the full DSE flow on multi-area synthetic
// interconnections — the paper's WECC ongoing-work scenario.
func BenchmarkWECCScaleDSE(b *testing.B) {
	for _, areas := range []int{4, 12} {
		b.Run("areas-"+itoa(areas), func(b *testing.B) {
			n, err := grid.SynthWECC(grid.SynthOptions{Areas: areas, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true, MaxIter: 40})
			if err != nil {
				b.Fatal(err)
			}
			dec, err := core.DecomposeWithParts(n, areas, grid.AreaParts(n), 1)
			if err != nil {
				b.Fatal(err)
			}
			plan := meas.FullPlan().Build(n)
			plan = append(plan, core.PMUPlanFor(dec, plan, 0.0005)...)
			ms, err := meas.Simulate(n, plan, pf.State, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunDSE(context.Background(), dec, ms, core.DSEOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFastDecoupledVsNewton compares the two power-flow solvers.
func BenchmarkFastDecoupledVsNewton(b *testing.B) {
	n := grid.Case118()
	b.Run("newton", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := powerflow.Solve(n, powerflow.Options{FlatStart: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fast-decoupled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := powerflow.SolveFastDecoupled(n, powerflow.Options{FlatStart: true, MaxIter: 150}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationContingencyScheduling reproduces the static-vs-dynamic
// load-balancing comparison of the paper's HPC reference [2] (Chen et al.,
// counter-based dynamic load balancing for massive contingency analysis)
// on the N-1 screen of the WECC-scale synthetic case.
func BenchmarkAblationContingencyScheduling(b *testing.B) {
	n, err := grid.SynthWECC(grid.SynthOptions{Areas: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true, MaxIter: 40})
	if err != nil {
		b.Fatal(err)
	}
	ratings, err := contingency.AutoRatings(n, pf.State, 1.3, 0.3, contingency.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, sched := range []struct {
		name string
		kind contingency.Scheduling
	}{{"static", contingency.StaticScheduling}, {"counter", contingency.CounterScheduling}} {
		b.Run(sched.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := contingency.ParallelScreen(ctx, n, pf.State, ratings, contingency.ParallelOptions{
					Workers: 4, Scheduling: sched.kind,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkContingencyPool118 measures the session-pooled what-if
// estimation sweep on IEEE-118: cold (a fresh pool each sweep, paying every
// skeleton build) versus pooled (a primed pool alternating two telemetry
// frames, value-refresh + warm-start only), under both scheduling modes.
func BenchmarkContingencyPool118(b *testing.B) {
	n := grid.Case118()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		b.Fatal(err)
	}
	plan := meas.FullPlan().Build(n)
	frames := make([][]meas.Measurement, 2)
	for i := range frames {
		if frames[i], err = meas.Simulate(n, plan, pf.State, 1, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	ratings, err := contingency.AutoRatings(n, pf.State, 1.3, 0.3, contingency.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, sched := range []struct {
		name string
		kind contingency.Scheduling
	}{{"static", contingency.StaticScheduling}, {"counter", contingency.CounterScheduling}} {
		popts := contingency.ParallelOptions{Workers: 4, Scheduling: sched.kind}
		b.Run("cold/"+sched.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool, err := contingency.NewPool(n, contingency.PoolOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := pool.Screen(ctx, frames[i%2], ratings, nil, popts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("pooled/"+sched.name, func(b *testing.B) {
			pool, err := contingency.NewPool(n, contingency.PoolOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := pool.Screen(ctx, frames[0], ratings, nil, popts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			skips, total := 0, 0
			for i := 0; i < b.N; i++ {
				_, stats, err := pool.Screen(ctx, frames[i%2], ratings, nil, popts)
				if err != nil {
					b.Fatal(err)
				}
				if stats.SkeletonBuilds != 0 {
					b.Fatalf("pooled sweep rebuilt %d skeletons", stats.SkeletonBuilds)
				}
				skips += stats.GainSkips
				total += stats.GainSkips + stats.GainRefreshes
			}
			if total > 0 {
				b.ReportMetric(float64(skips)/float64(total), "gain-skip-frac")
			}
		})
	}
}

// BenchmarkContingencyPoolBatch118 measures the batched multi-RHS sweep
// against the scalar pooled sweep on warm IEEE-118 re-screens: the batch
// axis sets how many outage cases share one lockstep gain solve (1 =
// scalar path). batch-frac reports the fraction of estimated cases that
// completed inside a batch; compact-frac the fraction of shared solver
// passes that ran at a compacted width. The nocompact variant pins the
// batch at full width, isolating the compaction win.
func BenchmarkContingencyPoolBatch118(b *testing.B) {
	n := grid.Case118()
	pf, err := powerflow.Solve(n, powerflow.Options{FlatStart: true})
	if err != nil {
		b.Fatal(err)
	}
	plan := meas.FullPlan().Build(n)
	frames := make([][]meas.Measurement, 2)
	for i := range frames {
		if frames[i], err = meas.Simulate(n, plan, pf.State, 1, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	ratings, err := contingency.AutoRatings(n, pf.State, 1.3, 0.3, contingency.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	popts := contingency.ParallelOptions{Workers: 4, Scheduling: contingency.CounterScheduling}
	for _, cfg := range []struct {
		batch     int
		nocompact bool
	}{{1, false}, {4, false}, {8, false}, {8, true}, {16, false}} {
		name := fmt.Sprintf("batch=%d", cfg.batch)
		if cfg.nocompact {
			name += "-nocompact"
		}
		b.Run(name, func(b *testing.B) {
			pool, err := contingency.NewPool(n, contingency.PoolOptions{
				Batch: cfg.batch,
				WLS:   wls.Options{NoBatchCompact: cfg.nocompact},
			})
			if err != nil {
				b.Fatal(err)
			}
			// Two priming sweeps: the first builds skeletons, the second
			// seeds warm starts inside the batch anchor gate.
			for _, f := range frames {
				if _, _, err := pool.Screen(ctx, f, ratings, nil, popts); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			skips, total, batched, estimated := 0, 0, 0, 0
			matVecs, narrow := 0, 0
			for i := 0; i < b.N; i++ {
				_, stats, err := pool.Screen(ctx, frames[i%2], ratings, nil, popts)
				if err != nil {
					b.Fatal(err)
				}
				if stats.SkeletonBuilds != 0 {
					b.Fatalf("warm sweep rebuilt %d skeletons", stats.SkeletonBuilds)
				}
				skips += stats.GainSkips
				total += stats.GainSkips + stats.GainRefreshes
				batched += stats.BatchedCases
				estimated += stats.Estimated
				matVecs += stats.BatchMatVecs
				narrow += stats.CompactedMatVecs
			}
			if total > 0 {
				b.ReportMetric(float64(skips)/float64(total), "gain-skip-frac")
			}
			if estimated > 0 {
				b.ReportMetric(float64(batched)/float64(estimated), "batch-frac")
			}
			if matVecs > 0 {
				b.ReportMetric(float64(narrow)/float64(matVecs), "compact-frac")
			}
		})
	}
}

// BenchmarkBatchCGDrain measures active-column compaction on a drain-heavy
// batched solve: 16 columns over the IEEE-118 gain whose warm starts range
// from cold to nearly converged, so most lanes retire early and the solve
// spends its tail iterations at a fraction of the original width. The
// nocompact axis pins the shared pass at full width (the pre-compaction
// behavior); compact-frac reports the fraction of shared passes that ran
// narrowed.
func BenchmarkBatchCGDrain(b *testing.B) {
	fx := benchFixture(b)
	ref := fx.Net.SlackIndex()
	mod, err := meas.NewModel(fx.Net, fx.Meas, ref, fx.Truth.Va[ref])
	if err != nil {
		b.Fatal(err)
	}
	hj := mod.Jacobian(mod.FlatVec())
	gp := sparse.NewGainPlan(hj)
	g := gp.Refresh(hj, mod.Weights())
	n := g.Rows
	pre, err := sparse.NewJacobi(g)
	if err != nil {
		b.Fatal(err)
	}
	const k = 16
	rhs := make([]float64, n*k)
	x0 := make([]float64, n*k)
	col := make([]float64, n)
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			col[i] = 1 + float64((i*31+c*17)%11)
			rhs[i*k+c] = col[i]
		}
		if c == 0 {
			continue // one cold column anchors the full batch width
		}
		// Staggered warm quality: column c pre-solved to 10^-(c/2+2), so
		// pairs of columns drain together every few iterations.
		warm, err := sparse.CG(g, col, sparse.CGOptions{
			Tol: math.Pow(10, -float64(c/2+2)), Precond: pre, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			x0[i*k+c] = warm.X[i]
		}
	}
	work := sparse.NewBatchCGWorkspace(n, k)
	for _, nocompact := range []bool{false, true} {
		name := "compact"
		if nocompact {
			name = "nocompact"
		}
		b.Run(name, func(b *testing.B) {
			opts := sparse.BatchCGOptions{Tol: 1e-10, Precond: pre, Workers: 1,
				X0: x0, Work: work, NoCompact: nocompact}
			matVecs, narrow := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sparse.BatchCG(g, rhs, k, opts)
				if err != nil {
					b.Fatal(err)
				}
				matVecs += res.MatVecs
				narrow += res.CompactedMatVecs
			}
			if matVecs > 0 {
				b.ReportMetric(float64(narrow)/float64(matVecs), "compact-frac")
			}
		})
	}
}

// BenchmarkGainMulMultiVec118 isolates the batched mat-vec kernel the
// multi-RHS CG is built on: one pass over the IEEE-118 gain nonzeros
// applied to K interleaved columns versus K separate scalar passes.
func BenchmarkGainMulMultiVec118(b *testing.B) {
	fx := benchFixture(b)
	ref := fx.Net.SlackIndex()
	mod, err := meas.NewModel(fx.Net, fx.Meas, ref, fx.Truth.Va[ref])
	if err != nil {
		b.Fatal(err)
	}
	hj := mod.Jacobian(mod.FlatVec())
	gp := sparse.NewGainPlan(hj)
	g := gp.Refresh(hj, mod.Weights())
	n := g.Rows
	for _, k := range []int{4, 8, 16} {
		x := make([]float64, n*k)
		y := make([]float64, n*k)
		for i := range x {
			x[i] = 1 + float64(i%7)
		}
		b.Run(fmt.Sprintf("scalar-x%d", k), func(b *testing.B) {
			xs, ys := x[:n], y[:n]
			for i := 0; i < b.N; i++ {
				for c := 0; c < k; c++ {
					g.MulVec(ys, xs)
				}
			}
		})
		b.Run(fmt.Sprintf("multi-x%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.MulMultiVec(y, x, k)
			}
		})
	}
}

// BenchmarkPartitionerScales exercises the multilevel partitioner on a
// large random graph (well beyond the 9-vertex paper graph).
func BenchmarkPartitionerScales(b *testing.B) {
	g := partition.NewGraph(2000)
	// Ring + chords, deterministic.
	for v := 0; v < 2000; v++ {
		g.AddEdge(v, (v+1)%2000, 1)
		g.AddEdge(v, (v+37)%2000, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.KWay(g, 8, partition.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
