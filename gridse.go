// Package gridse is the public API of the distributed power-grid
// state-estimation library — a reproduction of "Distributing Power Grid
// State Estimation on HPC Clusters — A System Architecture Prototype"
// (IEEE IPDPSW 2012).
//
// The library covers the full stack the paper builds on:
//
//   - IEEE 14/30/118-bus network models and AC power flow (ground truth),
//   - SCADA/PMU measurement simulation,
//   - weighted-least-squares state estimation with a parallel
//     preconditioned-conjugate-gradient gain solver,
//   - power-system decomposition with boundary/sensitive-bus analysis,
//   - the two-step distributed state-estimation (DSE) algorithm,
//   - METIS-style multilevel graph partitioning and the Expression (1)–(5)
//     cost model that maps subsystems onto HPC clusters,
//   - a MeDICi-style pipeline middleware for estimator-to-estimator data
//     exchange, and simulated multi-cluster testbeds.
//
// Quick start:
//
//	net := gridse.Case14()
//	truth, _ := gridse.SolvePowerFlow(net)
//	ms, _ := gridse.SimulateMeasurements(net, gridse.FullPlan().Build(net), truth.State, 1, 42)
//	est, _ := gridse.Estimate(net, ms)
//	fmt.Println(est.State.Vm)
//
// The full distributed flow is three calls: Decompose, PMUPlanFor (append
// to the plan before simulation), then RunDSE or RunDistributed — both
// context-first:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
//	defer cancel()
//	res, err := gridse.RunDSE(ctx, dec, ms, gridse.DSEOptions{})
package gridse

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/meas"
	"repro/internal/partition"
	"repro/internal/powerflow"
	"repro/internal/wls"
)

// Network modeling (internal/grid).
type (
	// Network is a complete power-system model.
	Network = grid.Network
	// Bus is one electrical node.
	Bus = grid.Bus
	// Branch is a line or transformer.
	Branch = grid.Branch
	// Gen is a generating unit.
	Gen = grid.Gen
	// BusType classifies buses (PQ, PV, Slack).
	BusType = grid.BusType
)

// Bus types.
const (
	PQ    = grid.PQ
	PV    = grid.PV
	Slack = grid.Slack
)

// Built-in test systems.
var (
	// Case14 returns the IEEE 14-bus test system.
	Case14 = grid.Case14
	// Case30 returns the IEEE 30-bus test system.
	Case30 = grid.Case30
	// Case118 returns the IEEE 118-bus test system (the paper's test case).
	Case118 = grid.Case118
)

// CaseByName returns a built-in case ("ieee14", "ieee30", "ieee118").
func CaseByName(name string) (*Network, error) { return grid.ByName(name) }

// SynthOptions configures the synthetic multi-area grid generator.
type SynthOptions = grid.SynthOptions

// SynthWECC synthesizes a WECC-scale interconnection of IEEE-118 areas
// (the paper's ongoing-work scenario: 37 balancing authorities).
var SynthWECC = grid.SynthWECC

// AreaParts returns a synthetic network's bus-to-area assignment, usable
// directly with DecomposeWithParts.
var AreaParts = grid.AreaParts

// ReadCase parses the text case format; WriteCase emits it.
func ReadCase(r io.Reader) (*Network, error) { return grid.ReadCase(r) }

// WriteCase serializes a network.
func WriteCase(w io.Writer, n *Network) error { return grid.WriteCase(w, n) }

// Power flow (internal/powerflow).
type (
	// PowerFlowResult is a solved operating point.
	PowerFlowResult = powerflow.Result
	// State is a voltage magnitude/angle vector pair.
	State = powerflow.State
)

// SolvePowerFlow runs a flat-start Newton–Raphson power flow, producing the
// ground-truth operating state for measurement simulation.
func SolvePowerFlow(n *Network) (*PowerFlowResult, error) {
	return powerflow.Solve(n, powerflow.Options{FlatStart: true})
}

// Measurements (internal/meas).
type (
	// Measurement is one telemetered quantity.
	Measurement = meas.Measurement
	// MeasurementKind enumerates measurement types.
	MeasurementKind = meas.Kind
	// PlanOptions selects which quantities are metered.
	PlanOptions = meas.PlanOptions
	// MeasurementModel evaluates h(x) and H(x).
	MeasurementModel = meas.Model
)

// Measurement kinds.
const (
	Vmag  = meas.Vmag
	Pinj  = meas.Pinj
	Qinj  = meas.Qinj
	Pflow = meas.Pflow
	Qflow = meas.Qflow
	Angle = meas.Angle
)

// Plan constructors.
var (
	// FullPlan meters every bus and both ends of every branch.
	FullPlan = meas.FullPlan
	// RTUPlan is a realistic mid-redundancy SCADA configuration.
	RTUPlan = meas.RTUPlan
	// DefaultSigmas returns conventional meter accuracies.
	DefaultSigmas = meas.DefaultSigmas
)

// SimulateMeasurements draws noisy measurement values from a true state.
func SimulateMeasurements(n *Network, plan []Measurement, truth State, noiseLevel float64, seed int64) ([]Measurement, error) {
	return meas.Simulate(n, plan, truth, noiseLevel, seed)
}

// NewMeasurementModel builds an h(x)/H(x) model with the network slack as
// the angle reference.
func NewMeasurementModel(n *Network, ms []Measurement, refAngle float64) (*MeasurementModel, error) {
	return meas.NewModel(n, ms, n.SlackIndex(), refAngle)
}

// State estimation (internal/wls).
type (
	// EstimatorOptions configures the WLS estimator.
	EstimatorOptions = wls.Options
	// EstimatorResult reports an estimation run.
	EstimatorResult = wls.Result
	// BadDatum is one identified bad measurement.
	BadDatum = wls.BadDatum
	// Observability reports observability analysis.
	Observability = wls.Observability
)

// Estimator solver, preconditioner, gain-layout, and numeric-reuse choices.
const (
	SolverPCG          = wls.PCG
	SolverDense        = wls.Dense
	SolverQR           = wls.QR
	PrecondJacobi      = wls.PrecondJacobi
	PrecondNone        = wls.PrecondNone
	PrecondIC0         = wls.PrecondIC0
	PrecondSSOR        = wls.PrecondSSOR
	PrecondBlockJacobi = wls.PrecondBlockJacobi
	FormatAuto         = wls.FormatAuto
	FormatCSR          = wls.FormatCSR
	FormatBSR          = wls.FormatBSR
	ReuseAuto          = wls.ReuseAuto
	ReuseOff           = wls.ReuseOff
	ReusePrecond       = wls.ReusePrecond
	ReuseGain          = wls.ReuseGain
)

// Estimate runs centralized WLS state estimation with default options,
// using a PMU angle measurement at the slack (if present) as the reference.
func Estimate(n *Network, ms []Measurement) (*EstimatorResult, error) {
	return core.CentralizedEstimate(context.Background(), n, ms, wls.Options{})
}

// EstimateWith runs centralized WLS estimation with explicit options.
func EstimateWith(n *Network, ms []Measurement, opts EstimatorOptions) (*EstimatorResult, error) {
	return core.CentralizedEstimate(context.Background(), n, ms, opts)
}

// EstimateContext runs centralized WLS estimation under a context: an
// expired or canceled ctx aborts the solve between Gauss-Newton
// iterations. RunDSE, RunDistributed and RunHierarchical likewise take a
// context as their first argument.
func EstimateContext(ctx context.Context, n *Network, ms []Measurement, opts EstimatorOptions) (*EstimatorResult, error) {
	return core.CentralizedEstimate(ctx, n, ms, opts)
}

// EstimateRobust runs the Huber M-estimator (gross errors suppressed by
// iteratively re-weighted least squares instead of removal).
var EstimateRobust = wls.EstimateRobust

// RobustOptions configures the Huber estimator.
type RobustOptions = wls.RobustOptions

// RobustResult reports a Huber estimation run.
type RobustResult = wls.RobustResult

// BuildFDIAttack constructs a coordinated (residual-invariant) false-data
// injection attack for security experiments.
var BuildFDIAttack = wls.BuildFDIAttack

// StatePerturbation builds the state shift targeted by an FDI attack.
var StatePerturbation = wls.StatePerturbation

// ChiSquareTest performs the J(x̂) bad-data detection test.
var ChiSquareTest = wls.ChiSquareTest

// NormalizedResiduals computes the normalized residual vector.
var NormalizedResiduals = wls.NormalizedResiduals

// IdentifyBadData runs the largest-normalized-residual identification loop.
var IdentifyBadData = wls.IdentifyBadData

// CheckObservability performs numerical observability analysis.
var CheckObservability = wls.CheckObservability

// RestoreObservability adds pseudo-measurements to make an unobservable
// measurement set solvable.
var RestoreObservability = wls.RestoreObservability

// EstimateConstrained runs equality-constrained WLS (exact zero-injection
// constraints via the KKT augmented system).
var EstimateConstrained = wls.EstimateConstrained

// ZeroInjectionConstraints scans a network for structural transit buses.
var ZeroInjectionConstraints = wls.ZeroInjectionConstraints

// Constraint declares one exact zero-injection constraint.
type Constraint = wls.Constraint

// LinearPMUEstimate solves the PMU-only (linear) estimation in one shot.
var LinearPMUEstimate = wls.LinearPMUEstimate

// PMUOnlyPlan meters every bus with a voltage phasor.
var PMUOnlyPlan = wls.PMUOnlyPlan

// InjectBadData corrupts one measurement by gross·sigma (testing aid).
var InjectBadData = meas.InjectBadData

// Distributed state estimation (internal/core).
type (
	// Decomposition is a power-system decomposition into subsystems.
	Decomposition = core.Decomposition
	// Subsystem is one decomposition piece.
	Subsystem = core.Subsystem
	// DecomposeOptions tunes the preliminary step.
	DecomposeOptions = core.DecomposeOptions
	// DSEOptions configures the DSE run.
	DSEOptions = core.DSEOptions
	// DSEResult is a completed DSE run.
	DSEResult = core.DSEResult
	// DistributedOptions configures a testbed run.
	DistributedOptions = core.DistributedOptions
	// DistributedResult reports a testbed run.
	DistributedResult = core.DistributedResult
	// HierarchicalResult reports a coordinator-based run.
	HierarchicalResult = core.HierarchicalResult
	// Mapping assigns subsystems to clusters.
	Mapping = core.Mapping
	// MapOptions configures the cost-model mapping.
	MapOptions = core.MapOptions
	// PseudoPacket is the neighbor-exchange payload.
	PseudoPacket = core.PseudoPacket
	// BusState is one bus's exchanged state.
	BusState = core.BusState
	// Session is a decomposition's reusable DSE pipeline: cached subproblem
	// skeletons, solver engines, and cross-round/cross-frame warm-start
	// state. Every Decomposition lazily owns one, used automatically by
	// RunDSE, RunDistributed, and RunHierarchical; Session.Reset drops the
	// cached state after an external structural change.
	Session = core.Session
)

// NewSession builds a standalone DSE session for a decomposition (advanced
// use — the orchestrators manage the decomposition-owned session, and a
// Tracker pins its own, without any explicit session handling).
var NewSession = core.NewSession

// Decompose splits a network into m subsystems with sensitivity analysis.
func Decompose(n *Network, m int, opts DecomposeOptions) (*Decomposition, error) {
	return core.Decompose(n, m, opts)
}

// DecomposeWithParts builds a decomposition from a given bus assignment.
var DecomposeWithParts = core.DecomposeWithParts

// PMUPlanFor returns the PMU measurements DSE needs at reference buses.
var PMUPlanFor = core.PMUPlanFor

// RunDSE executes the two-step DSE algorithm in-process. The context is
// the first argument; cancellation aborts in-flight subsystem solves.
func RunDSE(ctx context.Context, d *Decomposition, ms []Measurement, opts DSEOptions) (*DSEResult, error) {
	return core.RunDSE(ctx, d, ms, opts)
}

// RunDistributed executes the full architecture on a simulated testbed
// (sites, middleware, mapping, redistribution). The context governs the
// whole run; DistributedOptions.PhaseTimeout / TotalTimeout derive
// per-phase and overall deadlines from it.
func RunDistributed(ctx context.Context, d *Decomposition, ms []Measurement, opts DistributedOptions) (*DistributedResult, error) {
	return core.RunDistributed(ctx, d, ms, opts)
}

// RunHierarchical executes the coordinator-based hierarchical variant
// under the given context.
func RunHierarchical(ctx context.Context, d *Decomposition, ms []Measurement, opts DistributedOptions) (*HierarchicalResult, error) {
	return core.RunHierarchical(ctx, d, ms, opts)
}

// Tracker runs DSE over successive measurement frames with warm starts.
type Tracker = core.Tracker

// NewTracker prepares frame-to-frame tracking DSE for a decomposition.
var NewTracker = core.NewTracker

// Graph partitioning (internal/partition).
type (
	// Graph is a weighted undirected graph.
	Graph = partition.Graph
	// PartitionOptions tunes the multilevel partitioner.
	PartitionOptions = partition.Options
	// PartitionResult is a computed partition.
	PartitionResult = partition.Result
	// CostModel is the Expression (2) iteration model.
	CostModel = partition.CostModel
)

// NewGraph returns an empty weighted graph with n vertices.
var NewGraph = partition.NewGraph

// KWay partitions a graph into k parts (the METIS-substitute entry point).
var KWay = partition.KWay

// Repartition adaptively refines an existing assignment.
var Repartition = partition.Repartition

// PaperCostModel returns the paper's empirical 14-bus coefficients.
var PaperCostModel = partition.PaperCostModel

// NoiseFromTimeFrame is Expression (1), x = f(δt).
var NoiseFromTimeFrame = partition.NoiseFromTimeFrame
